//! End-to-end tests of the `twigm` binary: spawn the real executable,
//! check stdout/stderr/exit codes.

use std::io::Write;
use std::process::{Command, Stdio};

fn twigm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_twigm"))
}

fn run_with_stdin(args: &[&str], stdin: &[u8]) -> (String, String, i32) {
    let mut child = twigm()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn twigm");
    // The process may exit before reading stdin (e.g. a bad flag), so a
    // broken pipe here is expected, not a failure.
    let _ = child.stdin.take().expect("stdin piped").write_all(stdin);
    let output = child.wait_with_output().expect("twigm runs");
    (
        String::from_utf8(output.stdout).expect("utf8 stdout"),
        String::from_utf8(output.stderr).expect("utf8 stderr"),
        output.status.code().unwrap_or(-1),
    )
}

#[test]
fn ids_from_stdin() {
    let (out, _, code) = run_with_stdin(&["//a/b"], b"<r><a><b/></a><b/></r>");
    assert_eq!(out, "2\n");
    assert_eq!(code, 0);
}

#[test]
fn count_and_fragments() {
    let xml = b"<r><a><b>hi</b></a><a/></r>";
    let (out, _, _) = run_with_stdin(&["--count", "//a"], xml);
    assert_eq!(out, "2\n");
    let (out, _, _) = run_with_stdin(&["--fragments", "//a[b]"], xml);
    assert_eq!(out, "<a><b>hi</b></a>\n");
}

#[test]
fn no_match_exit_code_is_one() {
    let (out, _, code) = run_with_stdin(&["//zzz"], b"<r/>");
    assert_eq!(out, "");
    assert_eq!(code, 1);
}

#[test]
fn errors_exit_two() {
    // Bad query.
    let (_, err, code) = run_with_stdin(&["("], b"<r/>");
    assert_eq!(code, 2);
    assert!(err.contains("twigm:"));
    // Malformed XML.
    let (_, _, code) = run_with_stdin(&["//a"], b"<r>");
    assert_eq!(code, 2);
    // Missing file.
    let (_, _, code) = run_with_stdin(&["//a", "/nonexistent/file.xml"], b"");
    assert_eq!(code, 2);
    // Unknown flag.
    let (_, _, code) = run_with_stdin(&["--frobnicate", "//a"], b"");
    assert_eq!(code, 2);
}

#[test]
fn file_argument() {
    let dir = std::env::temp_dir().join(format!("twigm-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("data.xml");
    std::fs::write(&path, b"<r><x/><x/><x/></r>").unwrap();
    let (out, _, code) = run_with_stdin(&["-c", "//x", path.to_str().unwrap()], b"");
    assert_eq!(out, "3\n");
    assert_eq!(code, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_go_to_stderr() {
    let (out, err, _) = run_with_stdin(&["--stats", "-c", "//a"], b"<r><a/></r>");
    assert_eq!(out, "1\n");
    assert!(err.contains("events"));
    assert!(err.contains("peak"));
}

#[test]
fn multi_query_mode() {
    let (out, _, code) = run_with_stdin(
        &["-q", "//a", "-q", "//b[c]"],
        b"<r><a/><b><c/></b><b/></r>",
    );
    assert_eq!(code, 0);
    assert!(out.contains("Q0\t1"));
    assert!(out.contains("Q1\t2"));
    assert_eq!(out.lines().count(), 2);
}

#[test]
fn help_prints_usage() {
    let (out, _, code) = run_with_stdin(&["--help"], b"");
    assert!(out.contains("USAGE"));
    assert_eq!(code, 0);
}

#[test]
fn dom_engine_cross_checks_twig() {
    let xml = b"<r><a><b/><c/></a><a><b/></a></r>";
    let (twig_out, _, _) = run_with_stdin(&["--engine", "twig", "//a[c]/b"], xml);
    let (dom_out, _, _) = run_with_stdin(&["--engine", "dom", "//a[c]/b"], xml);
    assert_eq!(twig_out, dom_out);
}

#[test]
fn values_mode_prints_attribute_values() {
    let xml = br#"<bib><book year="1999"/><book year="2006"><title/></book></bib>"#;
    let (out, _, code) = run_with_stdin(&["--values", "//book/@year"], xml);
    assert_eq!(out, "1999\n2006\n");
    assert_eq!(code, 0);
    let (out, _, _) = run_with_stdin(&["--values", "//book[title]/@year"], xml);
    assert_eq!(out, "2006\n");
    // --values without an attr query is an error.
    let (_, err, code) = run_with_stdin(&["--values", "//book"], xml);
    assert_eq!(code, 2);
    assert!(err.contains("/@attr"));
}

#[test]
fn union_queries_merge_results() {
    let xml = b"<r><a/><b><c/></b><a/></r>";
    let (out, _, code) = run_with_stdin(&["//a | //b[c]"], xml);
    assert_eq!(out, "1\n2\n4\n");
    assert_eq!(code, 0);
    let (out, _, _) = run_with_stdin(&["-c", "//a | //a"], xml);
    assert_eq!(out, "2\n", "overlapping branches deduplicate");
    let (_, err, code) = run_with_stdin(&["--fragments", "//a | //b"], xml);
    assert_eq!(code, 2);
    assert!(err.contains("union"));
}

#[test]
fn entity_declarations_flow_through() {
    let xml = br#"<!DOCTYPE r [<!ENTITY who "world">]><r><p>hello &who;</p></r>"#;
    let (out, _, _) = run_with_stdin(&["-c", "//p[contains(text(), 'world')]"], xml);
    assert_eq!(out, "1\n");
}

#[test]
fn filter_mode_reports_matching_queries_once() {
    let xml = b"<r><a/><a/><b><c/></b></r>";
    let (out, _, code) = run_with_stdin(
        &["--filter", "-q", "//a", "-q", "//b[c]", "-q", "//zzz"],
        xml,
    );
    assert_eq!(code, 0);
    let mut lines: Vec<&str> = out.lines().collect();
    lines.sort_unstable();
    assert_eq!(lines, vec!["Q0", "Q1"]);
}

/// A Figure-2-style query (descendant axes + predicate over recursive
/// data) driven end-to-end with every observability flag at once.
#[test]
fn observability_flags_on_a_figure_2_query() {
    let dir = std::env::temp_dir().join(format!("twigm-obs-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let xml = b"<r><a><a><b/><c/></a><c/></a><a/></r>";
    let (out, err, code) = run_with_stdin(
        &[
            "--stats=json",
            "--progress",
            "--trace",
            trace_path.to_str().unwrap(),
            "-c",
            "//a[b]//c",
        ],
        xml,
    );
    assert_eq!(code, 0);
    assert_eq!(out, "1\n", "only the inner <a> has a <b> child");
    // One twigm-stats-v1 object on stderr with the telemetry fields.
    let json_line = err
        .lines()
        .find(|l| l.contains("twigm-stats-v1"))
        .unwrap_or_else(|| panic!("no stats json on stderr: {err}"));
    for needle in [
        r#""engine":"twig""#,
        r#""bytes":37"#,
        r#""max_depth":4"#,
        r#""qr_bound""#,
        r#""first_result_event""#,
        r#""results":1"#,
    ] {
        assert!(
            json_line.contains(needle),
            "missing {needle} in {json_line}"
        );
    }
    // The Chrome trace landed on disk with balanced spans.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(trace.starts_with(r#"{"traceEvents":["#));
    assert_eq!(
        trace.matches(r#""ph":"B""#).count(),
        trace.matches(r#""ph":"E""#).count()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_pretty_reports_the_memory_bound() {
    let (out, err, code) = run_with_stdin(
        &["--stats=pretty", "-c", "//a[b]//c"],
        b"<r><a><b/><c/></a></r>",
    );
    assert_eq!(code, 0);
    assert_eq!(out, "1\n");
    assert!(err.contains("peak entries"), "{err}");
    assert!(err.contains("|Q|"), "{err}");
    assert!(err.contains("events/s"), "{err}");
}

#[test]
fn progress_heartbeats_appear_for_large_inputs() {
    // ~30k events: enough to cross several 4096-event heartbeats.
    let mut xml = String::from("<r>");
    for _ in 0..5000 {
        xml.push_str("<a><b/></a>");
    }
    xml.push_str("</r>");
    let (out, err, code) = run_with_stdin(&["--progress", "-c", "//a[b]"], xml.as_bytes());
    assert_eq!(code, 0);
    assert_eq!(out, "5000\n");
    let heartbeats = err
        .lines()
        .filter(|l| l.starts_with("twigm: progress:"))
        .count();
    assert!(heartbeats >= 2, "expected several heartbeats: {err}");
    assert!(err.contains("events/s"), "{err}");
}

/// Satellite check: union queries report stats instead of silently
/// dropping them (they used to bypass the streaming stats path).
#[test]
fn union_queries_report_stats() {
    let xml = b"<r><a/><b><c/></b></r>";
    let (out, err, code) = run_with_stdin(&["--stats", "-c", "//a | //b[c]"], xml);
    assert_eq!(code, 0);
    assert_eq!(out, "2\n");
    assert!(err.contains("events"), "union --stats was dropped: {err}");
    assert!(err.contains("result(s)"), "{err}");
    let (_, err, _) = run_with_stdin(&["--stats=json", "//a | //b[c]"], xml);
    assert!(err.contains(r#""engine":"multi""#), "{err}");
}

#[test]
fn trace_jsonl_from_stdin() {
    let dir = std::env::temp_dir().join(format!("twigm-jsonl-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let (out, _, code) = run_with_stdin(
        &["--trace", path.to_str().unwrap(), "//a/b"],
        b"<r><a><b/></a></r>",
    );
    assert_eq!(code, 0);
    assert_eq!(out, "2\n");
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(text.contains(r#""kind":"push""#), "{text}");
    assert!(text.contains(r#""tag":"a""#), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn filter_mode_applies_to_a_single_query_too() {
    let xml = b"<r><a/><a/><a/></r>";
    let (out, _, code) = run_with_stdin(&["--filter", "-q", "//a"], xml);
    assert_eq!(out, "Q0\n", "one line despite three matches");
    assert_eq!(code, 0);
}
