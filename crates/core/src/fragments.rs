//! XML-fragment output (what the paper's ViteX implementation returns).
//!
//! The core machines emit node *ids* — footnote 3 of the paper: "Our
//! implementation returns XML fragments instead of node ids." This module
//! provides that mode: [`FragmentCollector`] wraps any [`StreamEngine`],
//! records the serialized subtree of every element that becomes a
//! solution *candidate*, and releases a fragment as soon as the wrapped
//! engine decides the candidate is a real solution.
//!
//! Memory note: fragments of undecided candidates are buffered until the
//! decision (or until the document ends, when unreleased buffers are
//! dropped). This is inherent to the problem — a streaming processor
//! cannot ship data it may still have to retract — and mirrors the
//! buffering all predicate-capable streaming processors perform (XSQ's
//! buffer, TurboXPath's work areas).

use twigm_sax::{escape_attr, escape_text, Attribute, NodeId};

use crate::engine::StreamEngine;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::stats::EngineStats;

/// A recording of one candidate element's subtree, in progress.
#[derive(Debug)]
struct Recording {
    id: u64,
    level: u32,
    buf: String,
}

/// Wraps a [`StreamEngine`] and captures the XML fragments of decided
/// solutions.
pub struct FragmentCollector<E> {
    inner: E,
    /// Recordings of candidate elements still open.
    open: Vec<Recording>,
    /// Fragments of closed but undecided candidates.
    pending: FxHashMap<u64, String>,
    /// Ids decided before their fragment closed (PathM decides at the
    /// start tag).
    decided_early: FxHashSet<u64>,
    /// Decided `(id, fragment)` pairs, in decision order.
    fragments: Vec<(NodeId, String)>,
    result_ids: Vec<NodeId>,
}

impl<E: StreamEngine> FragmentCollector<E> {
    /// Wraps an engine.
    pub fn new(inner: E) -> Self {
        FragmentCollector {
            inner,
            open: Vec::new(),
            pending: FxHashMap::default(),
            decided_early: FxHashSet::default(),
            fragments: Vec::new(),
            result_ids: Vec::new(),
        }
    }

    /// Drains the decided fragments.
    pub fn take_fragments(&mut self) -> Vec<(NodeId, String)> {
        std::mem::take(&mut self.fragments)
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    fn drain_decisions(&mut self) {
        for id in self.inner.take_results() {
            self.result_ids.push(id);
            match self.pending.remove(&id.get()) {
                Some(fragment) => self.fragments.push((id, fragment)),
                None => {
                    // Fragment still recording (decision at start tag).
                    self.decided_early.insert(id.get());
                }
            }
        }
    }
}

impl<E: StreamEngine> StreamEngine for FragmentCollector<E> {
    fn start_element(
        &mut self,
        tag: &str,
        attrs: &[Attribute<'_>],
        level: u32,
        id: NodeId,
    ) -> bool {
        let became_candidate = self.inner.start_element(tag, attrs, level, id);
        if !self.open.is_empty() || became_candidate {
            let mut tag_text = String::with_capacity(tag.len() + 2);
            tag_text.push('<');
            tag_text.push_str(tag);
            for a in attrs {
                tag_text.push(' ');
                tag_text.push_str(a.name);
                tag_text.push_str("=\"");
                tag_text.push_str(&escape_attr(&a.value));
                tag_text.push('"');
            }
            tag_text.push('>');
            for rec in &mut self.open {
                rec.buf.push_str(&tag_text);
            }
            if became_candidate {
                self.open.push(Recording {
                    id: id.get(),
                    level,
                    buf: tag_text,
                });
            }
        }
        self.drain_decisions();
        became_candidate
    }

    fn text(&mut self, text: &str) {
        self.inner.text(text);
        if !self.open.is_empty() {
            let escaped = escape_text(text);
            for rec in &mut self.open {
                rec.buf.push_str(&escaped);
            }
        }
    }

    fn end_element(&mut self, tag: &str, level: u32) {
        self.inner.end_element(tag, level);
        if !self.open.is_empty() {
            for rec in &mut self.open {
                rec.buf.push_str("</");
                rec.buf.push_str(tag);
                rec.buf.push('>');
            }
            // Close recordings of elements ending at this level (at most
            // one: recordings at one level are sequential, and the
            // previous one was closed when its element ended).
            while self.open.last().is_some_and(|rec| rec.level == level) {
                let rec = self.open.pop().expect("checked non-empty");
                if self.decided_early.remove(&rec.id) {
                    self.fragments.push((NodeId::new(rec.id), rec.buf));
                } else {
                    self.pending.insert(rec.id, rec.buf);
                }
            }
        }
        self.drain_decisions();
        if level == 1 {
            // Document closed: undecided candidates are dead.
            self.pending.clear();
            self.decided_early.clear();
        }
    }

    fn take_results(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.result_ids)
    }

    fn stats(&self) -> &EngineStats {
        self.inner.stats()
    }

    fn machine_size(&self) -> Option<usize> {
        self.inner.machine_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_engine;
    use crate::path::PathM;
    use crate::twig::TwigM;
    use twigm_xpath::parse;

    fn fragments(query: &str, xml: &str) -> Vec<String> {
        let q = parse(query).unwrap();
        let engine: Box<dyn StreamEngine> = if q.is_predicate_free() {
            Box::new(PathM::new(&q).unwrap())
        } else {
            Box::new(TwigM::new(&q).unwrap())
        };
        let collector = FragmentCollector::new(engine);
        let (_, mut collector) = run_engine(collector, xml.as_bytes()).unwrap();
        collector
            .take_fragments()
            .into_iter()
            .map(|(_, f)| f)
            .collect()
    }

    #[test]
    fn simple_fragments_with_twigm() {
        let xml = "<r><a><b>hi</b></a><a><c/></a></r>";
        let frags = fragments("//a[b]", xml);
        assert_eq!(frags, vec!["<a><b>hi</b></a>"]);
    }

    #[test]
    fn fragments_with_pathm_decided_at_start() {
        let xml = "<r><a><b>x</b></a></r>";
        let frags = fragments("//a", xml);
        assert_eq!(frags, vec!["<a><b>x</b></a>"]);
    }

    #[test]
    fn attributes_and_escaping_preserved() {
        let xml = r#"<r><a id="1&amp;2">x &lt; y</a></r>"#;
        let frags = fragments("//a", xml);
        assert_eq!(frags, vec![r#"<a id="1&amp;2">x &lt; y</a>"#]);
    }

    #[test]
    fn nested_candidates_each_get_fragments() {
        let xml = "<r><a><a><b/></a><b/></a></r>";
        let frags = fragments("//a[b]", xml);
        assert_eq!(frags.len(), 2);
        assert!(frags.contains(&"<a><b></b></a>".to_string()));
        assert!(frags.contains(&"<a><a><b></b></a><b></b></a>".to_string()));
    }

    #[test]
    fn undecided_candidates_produce_nothing() {
        let xml = "<r><a><c/></a></r>";
        assert!(fragments("//a[b]", xml).is_empty());
    }

    #[test]
    fn fragment_ids_match_engine_results() {
        let q = parse("//a[b]").unwrap();
        let collector = FragmentCollector::new(TwigM::new(&q).unwrap());
        let xml = "<r><a><b/></a></r>";
        let (ids, mut collector) = run_engine(collector, xml.as_bytes()).unwrap();
        let frags = collector.take_fragments();
        assert_eq!(ids.len(), 1);
        assert_eq!(frags[0].0, ids[0]);
    }
}
