//! The BranchM machine (paper §3.2): streaming evaluation of `XP{/,[]}`
//! — predicates, but only child axes and no wildcards.
//!
//! With only `/` edges, a query node can match elements at exactly one
//! level, and at most one such element is active at a time. The per-node
//! state therefore degenerates from TwigM's stack to a single optional
//! `(level L, branch match B, candidates C)` record, exactly the machine
//! of the paper's figure 3. On a satisfied end tag the node sets its
//! β-component in the parent's branch match, uploads its candidates, and
//! resets to `(L = -1, B = <F..F>, C = ∅)` — represented here as `None`.

use twigm_sax::{Attribute, NodeId, Symbol, SymbolTable};
use twigm_xpath::Path;

use crate::engine::StreamEngine;
use crate::machine::{MNode, Machine, MachineError};
use crate::observe::{MachineObserver, NoopObserver};
use crate::query::QCond;
use crate::stats::EngineStats;

#[derive(Debug, Clone)]
struct State {
    level: u32,
    slots: u64,
    candidates: Vec<u64>,
    text: String,
}

/// The BranchM streaming engine.
///
/// Generic over a [`MachineObserver`]; the default [`NoopObserver`]
/// compiles every hook away.
pub struct BranchM<O: MachineObserver = NoopObserver> {
    machine: Machine,
    /// Per machine node: the single active match, if any.
    states: Vec<Option<State>>,
    depth: u32,
    results: Vec<NodeId>,
    stats: EngineStats,
    live_entries: u64,
    live_candidates: u64,
    observer: O,
}

impl BranchM {
    /// Compiles an `XP{/,[]}` query.
    pub fn new(query: &Path) -> Result<Self, MachineError> {
        Self::with_observer(query, NoopObserver)
    }
}

impl<O: MachineObserver> BranchM<O> {
    /// Compiles an `XP{/,[]}` query with an attached observer.
    pub fn with_observer(query: &Path, observer: O) -> Result<Self, MachineError> {
        debug_assert!(
            query.is_branch_only(),
            "BranchM evaluates XP{{/,[]}}; use TwigM for `//` or `*`"
        );
        let machine = Machine::from_path(query)?;
        let states = vec![None; machine.len()];
        Ok(BranchM {
            machine,
            states,
            depth: 0,
            results: Vec::new(),
            stats: EngineStats::default(),
            live_entries: 0,
            live_candidates: 0,
            observer,
        })
    }

    /// The compiled machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Consumes the engine, returning the observer.
    pub fn into_observer(self) -> O {
        self.observer
    }

    fn initial_slots(node: &MNode, attrs: &[Attribute<'_>]) -> u64 {
        let mut slots = 0u64;
        for &i in &node.start_conds {
            let ok = match &node.conditions[i] {
                QCond::AttrExists(name) => attrs.iter().any(|a| a.name == name),
                QCond::AttrCmp(name, op, lit) => attrs
                    .iter()
                    .any(|a| a.name == name && op.eval(&a.value, lit)),
                QCond::AttrFn(name, func, arg) => attrs
                    .iter()
                    .any(|a| a.name == name && func.eval(&a.value, arg)),
                _ => unreachable!("start_conds holds only attribute conditions"),
            };
            if ok {
                slots |= 1 << i;
            }
        }
        slots
    }
}

impl<O: MachineObserver> BranchM<O> {
    /// δs, dispatching on an interned symbol. (`XP{/,[]}` has no
    /// wildcards, so the wildcard list is empty and dispatch is just the
    /// dense per-symbol node list.)
    fn start_sym(&mut self, sym: Symbol, attrs: &[Attribute<'_>], level: u32, id: NodeId) -> bool {
        self.stats.start_events += 1;
        self.depth = level;
        if O::ENABLED {
            self.observer.on_start_element(sym, level, id);
        }
        let mut became_candidate = false;
        let n_tag = self.machine.tag_nodes(sym).len();
        let n_wild = self.machine.wildcards().len();
        for i in 0..n_tag + n_wild {
            let v = if i < n_tag {
                self.machine.tag_nodes(sym)[i]
            } else {
                self.machine.wildcards()[i - n_tag]
            };
            let node = &self.machine.nodes[v];
            self.stats.qualification_probes += 1;
            let qualified = match node.parent {
                None => node.edge.test(level as i64),
                Some(p) => self.states[p]
                    .as_ref()
                    .is_some_and(|s| node.edge.test(level as i64 - s.level as i64)),
            };
            if !qualified {
                continue;
            }
            let slots = Self::initial_slots(node, attrs);
            let mut candidates = Vec::new();
            if node.is_sol {
                candidates.push(id.get());
                became_candidate = true;
                self.live_candidates += 1;
            }
            debug_assert!(
                self.states[v].is_none(),
                "XP{{/,[]}} admits one active match per query node"
            );
            self.states[v] = Some(State {
                level,
                slots,
                candidates,
                text: String::new(),
            });
            self.stats.pushes += 1;
            self.live_entries += 1;
            if O::ENABLED {
                self.observer.on_push(v as u32, level, node.is_sol);
            }
        }
        self.stats.peak_entries = self.stats.peak_entries.max(self.live_entries);
        self.stats.peak_candidates = self.stats.peak_candidates.max(self.live_candidates);
        if O::ENABLED {
            self.observer.on_event_end(&self.stats);
        }
        became_candidate
    }

    /// δe, dispatching on an interned symbol.
    fn end_sym(&mut self, sym: Symbol, level: u32) {
        self.stats.end_events += 1;
        self.depth = level.saturating_sub(1);
        if O::ENABLED {
            self.observer.on_end_element(sym, level);
        }
        let n_tag = self.machine.tag_nodes(sym).len();
        let n_wild = self.machine.wildcards().len();
        for i in 0..n_tag + n_wild {
            let v = if i < n_tag {
                self.machine.tag_nodes(sym)[i]
            } else {
                self.machine.wildcards()[i - n_tag]
            };
            let node = &self.machine.nodes[v];
            let matches_level = self.states[v].as_ref().is_some_and(|s| s.level == level);
            if !matches_level {
                continue;
            }
            let mut state = self.states[v].take().expect("checked above");
            self.stats.pops += 1;
            self.live_entries -= 1;
            self.live_candidates -= state.candidates.len() as u64;
            for &i in &node.text_conds {
                let ok = match &node.conditions[i] {
                    QCond::TextExists => !state.text.is_empty(),
                    // Comparisons over an empty node-set are false in
                    // XPath, even for `!=`.
                    QCond::TextCmp(op, lit) => !state.text.is_empty() && op.eval(&state.text, lit),
                    QCond::TextFn(func, arg) => {
                        !state.text.is_empty() && func.eval(&state.text, arg)
                    }
                    _ => unreachable!("text_conds holds only text conditions"),
                };
                if ok {
                    state.slots |= 1 << i;
                }
            }
            let satisfied = node.formula.eval(state.slots);
            if O::ENABLED {
                self.observer.on_pop(v as u32, level, satisfied);
            }
            if !satisfied {
                continue;
            }
            match node.parent {
                None => {
                    for id in state.candidates {
                        self.results.push(NodeId::new(id));
                        self.stats.results += 1;
                        if O::ENABLED {
                            self.observer.on_result(NodeId::new(id));
                        }
                    }
                }
                Some(p) => {
                    self.stats.upload_probes += 1;
                    if let Some(parent) = self.states[p].as_mut() {
                        parent.slots |= 1 << node.parent_slot.expect("non-root has a slot");
                        self.live_candidates += state.candidates.len() as u64;
                        self.stats.candidates_merged += state.candidates.len() as u64;
                        if O::ENABLED {
                            self.observer.on_upload(
                                v as u32,
                                p as u32,
                                state.candidates.len() as u64,
                            );
                        }
                        // The spine is a chain in XP{/,[]}, so the same id
                        // can never arrive twice: plain append keeps the
                        // set sorted and duplicate-free.
                        parent.candidates.extend(state.candidates);
                    }
                }
            }
        }
        self.stats.peak_candidates = self.stats.peak_candidates.max(self.live_candidates);
        if O::ENABLED {
            self.observer.on_event_end(&self.stats);
            if level == 1 {
                self.observer.on_document_end();
            }
        }
    }
}

impl<O: MachineObserver> StreamEngine for BranchM<O> {
    fn start_element(
        &mut self,
        tag: &str,
        attrs: &[Attribute<'_>],
        level: u32,
        id: NodeId,
    ) -> bool {
        let sym = self.machine.symbols().lookup(tag);
        self.start_sym(sym, attrs, level, id)
    }

    fn start_element_sym(
        &mut self,
        sym: Symbol,
        _tag: &str,
        attrs: &[Attribute<'_>],
        level: u32,
        id: NodeId,
    ) -> bool {
        self.start_sym(sym, attrs, level, id)
    }

    fn text(&mut self, text: &str) {
        self.text_at(text, self.depth)
    }

    /// Depth-explicit text routing for prefiltered batch streams, where
    /// `self.depth` can lag the true document depth (see the trait doc).
    fn text_at(&mut self, text: &str, level: u32) {
        for &v in self.machine.text_nodes() {
            if let Some(state) = self.states[v].as_mut() {
                if state.level == level {
                    state.text.push_str(text);
                }
            }
        }
    }

    fn relevance(&self) -> crate::relevance::Relevance {
        crate::relevance::machine_relevance(&self.machine)
    }

    fn end_element(&mut self, tag: &str, level: u32) {
        let sym = self.machine.symbols().lookup(tag);
        self.end_sym(sym, level)
    }

    fn end_element_sym(&mut self, sym: Symbol, _tag: &str, level: u32) {
        self.end_sym(sym, level)
    }

    fn symbols(&self) -> Option<&SymbolTable> {
        Some(self.machine.symbols())
    }

    fn needs_attributes(&self, sym: Symbol) -> bool {
        self.machine.needs_attributes(sym)
    }

    fn take_results(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.results)
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn machine_size(&self) -> Option<usize> {
        Some(self.machine.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_engine;
    use twigm_xpath::parse;

    fn run(query: &str, xml: &str) -> Vec<u64> {
        let engine = BranchM::new(&parse(query).unwrap()).unwrap();
        let (ids, _) = run_engine(engine, xml.as_bytes()).unwrap();
        ids.into_iter().map(NodeId::get).collect()
    }

    #[test]
    fn paper_figure3_example() {
        // Q3 = /a[d]/b[e]/c over figure 3(a): a1(b1(c1, e1), d1).
        let xml = "<a><b><c/><e/></b><d/></a>";
        assert_eq!(run("/a[d]/b[e]/c", xml), vec![2]);
    }

    #[test]
    fn unsatisfied_predicate_discards_candidates() {
        let xml = "<a><b><c/></b><d/></a>"; // no e
        assert!(run("/a[d]/b[e]/c", xml).is_empty());
        let xml = "<a><b><c/><e/></b></a>"; // no d
        assert!(run("/a[d]/b[e]/c", xml).is_empty());
    }

    #[test]
    fn predicate_found_after_candidate() {
        // e1 closes after c1 is seen: candidate must wait, then resolve.
        let xml = "<a><b><c/><e/></b></a>";
        assert_eq!(run("/a/b[e]/c", xml), vec![2]);
    }

    #[test]
    fn repeated_siblings_reset_state() {
        // Two b's under a: only the one with e contributes.
        let xml = "<a><b><c/></b><b><c/><e/></b></a>";
        assert_eq!(run("/a/b[e]/c", xml), vec![4]);
    }

    #[test]
    fn attribute_and_text_predicates() {
        let xml = r#"<a><b id="7"><c>x</c></b></a>"#;
        assert_eq!(run("/a/b[@id = '7']/c", xml).len(), 1);
        assert_eq!(run("/a/b[@id = '8']/c", xml).len(), 0);
        assert_eq!(run("/a/b/c[text() = 'x']", xml).len(), 1);
        assert_eq!(run("/a/b[c = 'x']/c", xml).len(), 1);
    }

    #[test]
    fn multiple_candidates_accumulate() {
        let xml = "<a><b><c/><c/><e/></b></a>";
        assert_eq!(run("/a/b[e]/c", xml).len(), 2);
    }

    #[test]
    fn root_query_returns_root() {
        assert_eq!(run("/a[b]", "<a><b/></a>"), vec![0]);
        assert!(run("/a[b]", "<a><c/></a>").is_empty());
    }

    #[test]
    fn memory_is_one_state_per_node() {
        let engine = BranchM::new(&parse("/a[d]/b[e]/c").unwrap()).unwrap();
        let xml = "<a><b><c/><e/></b><d/></a>";
        let (_, engine) = run_engine(engine, xml.as_bytes()).unwrap();
        // Peak live entries <= |Q| = 5.
        assert!(engine.stats().peak_entries <= 5);
    }
}

#[cfg(test)]
mod attr_return_tests {
    use super::*;
    use crate::engine::run_engine;
    use twigm_xpath::parse;

    #[test]
    fn attribute_return_paths_route_through_branchm() {
        let q = parse("/a/b/@id").unwrap();
        assert!(q.is_branch_only(), "attr paths stay in XP{{/,[]}}");
        let engine = BranchM::new(&q).unwrap();
        let xml = br#"<a><b id="x"/><b/></a>"#;
        let (ids, _) = run_engine(engine, &xml[..]).unwrap();
        // Only the b with the attribute matches.
        assert_eq!(ids.len(), 1);
        assert_eq!(ids[0].get(), 1);
    }
}
