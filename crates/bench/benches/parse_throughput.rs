//! Micro-benchmark: SAX parser throughput over each dataset family.
//!
//! The parser sits under every streaming engine, so its event rate is the
//! floor of every figure-7 number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use twigm_datagen::Dataset;
use twigm_sax::SaxReader;

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("sax_parse");
    group.sample_size(20);
    for ds in Dataset::ALL {
        let (xml, _) = ds.generate_vec(512 * 1024);
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ds.name()), &xml, |b, xml| {
            b.iter(|| {
                let mut reader = SaxReader::from_bytes(xml);
                let mut events = 0u64;
                while reader.next_event().unwrap().is_some() {
                    events += 1;
                }
                events
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
