//! Cross-engine agreement on the paper's generated datasets: every
//! streaming engine must return exactly the node set the in-memory DOM
//! oracle computes, for every benchmark query.

use twigm::engine::run_engine;
use twigm::{Engine, PathM, TwigM};
use twigm_baselines::inmem::{Document, InMemEval};
use twigm_baselines::{LazyDfa, NaiveEnum};
use twigm_datagen::Dataset;
use twigm_sax::NodeId;
use twigm_xpath::parse;

fn sorted(ids: Vec<NodeId>) -> Vec<u64> {
    let mut ids: Vec<u64> = ids.into_iter().map(NodeId::get).collect();
    ids.sort_unstable();
    ids
}

fn check_dataset(dataset: Dataset, queries: &[&str]) {
    let (xml, _) = dataset.generate_vec(150_000);
    let doc = Document::parse_bytes(&xml).unwrap();
    let mut oracle = InMemEval::new(&doc);
    for text in queries {
        let query = parse(text).unwrap();
        let expected = sorted(oracle.evaluate(&query));

        let twig = sorted(run_engine(TwigM::new(&query).unwrap(), &xml[..]).unwrap().0);
        assert_eq!(twig, expected, "TwigM vs oracle on {text} ({dataset:?})");

        let auto = sorted(run_engine(Engine::new(&query).unwrap(), &xml[..]).unwrap().0);
        assert_eq!(auto, expected, "Engine vs oracle on {text} ({dataset:?})");

        let naive = sorted(
            run_engine(NaiveEnum::new(&query).unwrap(), &xml[..])
                .unwrap()
                .0,
        );
        assert_eq!(naive, expected, "NaiveEnum vs oracle on {text} ({dataset:?})");

        if query.is_predicate_free() {
            let path = sorted(run_engine(PathM::new(&query).unwrap(), &xml[..]).unwrap().0);
            assert_eq!(path, expected, "PathM vs oracle on {text} ({dataset:?})");
            let dfa = sorted(run_engine(LazyDfa::new(&query).unwrap(), &xml[..]).unwrap().0);
            assert_eq!(dfa, expected, "LazyDfa vs oracle on {text} ({dataset:?})");
        }
    }
}

#[test]
fn book_queries_agree() {
    check_dataset(
        Dataset::Book,
        &[
            "/bib/book/title",
            "//section//figure",
            "/bib/*/title",
            "//section/*//image",
            "//section[title]/p",
            "//section[figure]//title",
            "//book[@year]//section[@id]/title",
            "//book[@year = '1999']/title",
            "//section[figure[image]]//p",
            "//book//*[title][figure/@width]/p",
            "//section[@difficulty > 5]//figure",
            "//book[author/last]//p",
        ],
    );
}

#[test]
fn auction_queries_agree() {
    check_dataset(
        Dataset::Auction,
        &[
            "/site//regions/africa/item/name",
            "//people/person[@id = 'person0']/name",
            "//open_auction[bidder]/current",
            "//item[payment]/name",
            "//person[profile/@income > 50000]/name",
            "//open_auction[bidder/increase > 20]/itemref",
            "//description//listitem//text",
            "//closed_auction[annotation]/price",
            "//listitem//listitem",
            "//person[profile[interest]]/name",
        ],
    );
}

#[test]
fn protein_queries_agree() {
    check_dataset(
        Dataset::Protein,
        &[
            "/ProteinDatabase/ProteinEntry/protein/name",
            "//reference//author",
            "/ProteinDatabase/*/header/uid",
            "//refinfo/*/author",
            "//ProteinEntry[keywords]/protein",
            "//refinfo[year]/title",
            "//ProteinEntry[@id]//gene",
            "//accinfo[mol-type = 'mRNA']",
            "//ProteinEntry[reference/refinfo[authors]]//keyword",
            "//*[header][summary/type = 'protein']/sequence",
        ],
    );
}

#[test]
fn recursive_stress_agrees() {
    // The adversarial shape for streaming engines: heavy tag repetition.
    let mut xml = Vec::from(&b"<root>"[..]);
    let mut count = 0;
    let mut seed = 100;
    while count < 4_000 {
        let mut tree = Vec::new();
        count += twigm_datagen::recursive::random_recursive(seed, 12, 3, &["x", "y", "z"], &mut tree)
            .unwrap();
        xml.extend_from_slice(&tree);
        seed += 1;
    }
    xml.extend_from_slice(b"</root>");
    let doc = Document::parse_bytes(&xml).unwrap();
    let mut oracle = InMemEval::new(&doc);
    for text in [
        "//x//y//z",
        "//x[y]//z",
        "//x[y][z]//y",
        "//x//x//x",
        "//x[y/z]//y",
        "//*[x]//y",
        "//x[.//z]//y",
        "//z[x or y]",
    ] {
        let query = parse(text).unwrap();
        let expected = sorted(oracle.evaluate(&query));
        let twig = sorted(run_engine(TwigM::new(&query).unwrap(), &xml[..]).unwrap().0);
        assert_eq!(twig, expected, "TwigM vs oracle on {text}");
        let naive = sorted(
            run_engine(NaiveEnum::new(&query).unwrap(), &xml[..])
                .unwrap()
                .0,
        );
        assert_eq!(naive, expected, "NaiveEnum vs oracle on {text}");
    }
}

#[test]
fn union_evaluation_matches_per_branch_oracle() {
    let (xml, _) = Dataset::Book.generate_vec(100_000);
    let branches =
        twigm_xpath::parse_union("//section[title]/p | //figure/image | //book/author/last")
            .unwrap();
    let union = twigm::evaluate_union(&branches, &xml[..]).unwrap();
    let doc = Document::parse_bytes(&xml).unwrap();
    let mut oracle = InMemEval::new(&doc);
    let mut expected: Vec<u64> = branches
        .iter()
        .flat_map(|b| oracle.evaluate(b))
        .map(NodeId::get)
        .collect();
    expected.sort_unstable();
    expected.dedup();
    let union: Vec<u64> = union.into_iter().map(NodeId::get).collect();
    assert_eq!(union, expected);
}
