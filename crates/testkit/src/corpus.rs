//! The failure-corpus `.case` file format and its replay.
//!
//! A case file is a minimal, self-contained reproduction of a past
//! failure: one query plus one single-line XML document. Replay reruns
//! the *entire* check battery (differential, Theorem 4.4, chunk-resplit,
//! metamorphic) — the battery is deterministic and needs no seed, so a
//! case that once exposed a bug keeps guarding against its return.
//!
//! ```text
//! # free-form commentary (the writer records the original violation)
//! kind: resplit
//! query: //a[b]//c
//! xml: <r><a><b/><c/></a></r>
//! ```

use twigm_xpath::{parse, Path};

/// A parsed `.case` file.
#[derive(Debug, Clone)]
pub struct Case {
    /// The violation kind recorded when the case was captured
    /// (informative only — replay reruns every check).
    pub kind: String,
    /// The query text.
    pub query: String,
    /// The document bytes.
    pub xml: Vec<u8>,
}

/// Formats a case file. `comment` lines are emitted with a leading `#`.
///
/// # Panics
/// Panics if `xml` contains a newline (generated and shrunk documents
/// never do).
pub fn format_case(kind: &str, comment: &str, query: &str, xml: &[u8]) -> String {
    assert!(
        !xml.contains(&b'\n') && !xml.contains(&b'\r'),
        "corpus XML must be single-line"
    );
    let mut out = String::new();
    for line in comment.lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("kind: ");
    out.push_str(kind);
    out.push('\n');
    out.push_str("query: ");
    out.push_str(query);
    out.push('\n');
    out.push_str("xml: ");
    out.push_str(&String::from_utf8_lossy(xml));
    out.push('\n');
    out
}

/// Parses a `.case` file.
pub fn parse_case(text: &str) -> Result<Case, String> {
    let mut kind = None;
    let mut query = None;
    let mut xml = None;
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("kind: ") {
            kind = Some(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("query: ") {
            query = Some(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("xml: ") {
            xml = Some(rest.as_bytes().to_vec());
        } else {
            return Err(format!("unrecognized case line: {line}"));
        }
    }
    Ok(Case {
        kind: kind.ok_or("missing `kind:` line")?,
        query: query.ok_or("missing `query:` line")?,
        xml: xml.ok_or("missing `xml:` line")?,
    })
}

/// Parses the query of a case, reporting a readable error.
pub fn case_query(case: &Case) -> Result<Path, String> {
    parse(&case.query).map_err(|e| format!("case query `{}` unparseable: {e}", case.query))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_and_parse_roundtrip() {
        let text = format_case(
            "resplit",
            "found by seed 42\nshrunk from 120 nodes",
            "//a[b]",
            b"<r><a><b/></a></r>",
        );
        let case = parse_case(&text).unwrap();
        assert_eq!(case.kind, "resplit");
        assert_eq!(case.query, "//a[b]");
        assert_eq!(case.xml, b"<r><a><b/></a></r>");
        assert!(case_query(&case).is_ok());
    }

    #[test]
    fn malformed_cases_error() {
        assert!(parse_case("kind: x\nquery: //a\n").is_err(), "missing xml");
        assert!(parse_case("bogus line\n").is_err());
        assert!(case_query(&Case {
            kind: "x".into(),
            query: "not-xpath".into(),
            xml: b"<r/>".to_vec(),
        })
        .is_err());
    }
}
