//! Moderate-scale stress tests: multi-megabyte generated datasets
//! streamed end-to-end, asserting the paper's resource story (constant
//! state, linear work) rather than just answers.

use twigm::engine::run_engine;
use twigm::{StreamEngine, TwigM};
use twigm_datagen::Dataset;
use twigm_xpath::parse;

/// ~8 MB of protein records: bounded state, work linear in events.
#[test]
fn protein_8mb_streams_in_constant_state() {
    let (xml, report) = Dataset::Protein.generate_vec(8 * 1024 * 1024);
    assert!(report.bytes >= 8 * 1024 * 1024);
    let query = parse("//ProteinEntry[reference/refinfo[authors]]//keyword").unwrap();
    let mut engine = TwigM::new(&query).unwrap();
    let (ids, _) = run_engine(&mut engine, &xml[..]).unwrap();
    assert!(!ids.is_empty());
    let stats = engine.stats();
    // Depth 6 data, 5 machine nodes: peak entries must stay tiny.
    assert!(
        stats.peak_entries <= 30,
        "peak {} entries on shallow data",
        stats.peak_entries
    );
    // Theorem 4.4: work per event bounded by a small constant here.
    assert!(
        stats.work() < stats.events() * 8,
        "work {} for {} events",
        stats.work(),
        stats.events()
    );
}

/// Recursive book data at 4 MB: recursive sections, candidate buffering,
/// still bounded by |Q|·R.
#[test]
fn book_4mb_peak_entries_bounded_by_q_times_depth() {
    let (xml, report) = Dataset::Book.generate_vec(4 * 1024 * 1024);
    let query = parse("//section[figure[image]]//p").unwrap();
    let mut engine = TwigM::new(&query).unwrap();
    let machine_size = engine.machine().len() as u64;
    let (ids, _) = run_engine(&mut engine, &xml[..]).unwrap();
    assert!(!ids.is_empty());
    assert!(
        engine.stats().peak_entries <= machine_size * report.max_depth as u64,
        "peak {} > |Q|*R = {}*{}",
        engine.stats().peak_entries,
        machine_size,
        report.max_depth
    );
}

/// The figure-1 worst case at n = 2000: four million pattern matches
/// encoded in 4001 stack entries, evaluated in well under a second.
#[test]
fn figure1_n2000_stays_linear() {
    let xml = twigm_datagen::recursive::figure1_string(2000);
    let query = parse("//a[d]//b[e]//c").unwrap();
    let mut engine = TwigM::new(&query).unwrap();
    let start = std::time::Instant::now();
    let (ids, _) = run_engine(&mut engine, xml.as_bytes()).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(ids.len(), 1);
    assert_eq!(engine.stats().peak_entries, 4001);
    assert!(
        elapsed.as_secs() < 30,
        "quadratic-or-worse behaviour detected: {elapsed:?}"
    );
}

/// A 2 MB document with one thousand standing queries in filter mode:
/// finishes promptly and reports every satisfiable query exactly once.
#[test]
fn thousand_standing_queries_filter_one_pass() {
    let (xml, _) = Dataset::Book.generate_vec(2 * 1024 * 1024);
    let mut engine = twigm::MultiTwigM::new().filter_mode();
    for i in 0..1000 {
        let q = match i % 4 {
            0 => "//section[title]/p".to_string(),
            1 => format!("//section[@id = 's{i}']/p"),
            2 => "//book[@year >= 2000]/title".to_string(),
            _ => format!("//nonexistent{i}"),
        };
        engine.add_query(&parse(&q).unwrap()).unwrap();
    }
    let results = engine.run(&xml[..]).unwrap();
    // Every query reported at most once.
    let mut seen = std::collections::HashSet::new();
    for r in &results {
        assert!(seen.insert(r.query), "query {} reported twice", r.query);
    }
    // The two always-satisfiable patterns matched (500 queries).
    assert!(results.len() >= 500);
}
