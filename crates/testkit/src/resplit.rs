//! Stream-robustness driver: the same document re-fed under adversarial
//! byte-chunk splits must produce identical results and identical
//! Theorem 4.4 peak-memory accounting.
//!
//! Chunking is exercised through the public [`FeedReader`] push API —
//! the seam a network or pipeline deployment would use — so a parse that
//! resumes mid-tag, mid-entity-reference or mid-CDATA-section is
//! byte-for-byte equivalent to a whole-buffer parse.

use twigm::engine::StreamEngine;
use twigm_sax::{Attribute, FeedEvent, FeedReader, SaxError, Symbol};

/// A family of chunk boundaries to re-feed a document under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// One byte at a time — every boundary at once.
    OneByte,
    /// Fixed-size chunks of `k` bytes.
    EveryK(usize),
    /// Cuts placed right after `<`, `&` and `]]` — mid-tag, mid-entity
    /// and mid-CDATA-terminator boundaries specifically.
    Boundaries,
}

/// All strategies a standard check battery runs.
pub const STRATEGIES: [SplitStrategy; 4] = [
    SplitStrategy::OneByte,
    SplitStrategy::EveryK(3),
    SplitStrategy::EveryK(7),
    SplitStrategy::Boundaries,
];

/// The sorted interior cut positions a strategy makes on `xml`.
pub fn split_points(xml: &[u8], strategy: SplitStrategy) -> Vec<usize> {
    let mut cuts = Vec::new();
    match strategy {
        SplitStrategy::OneByte => cuts.extend(1..xml.len()),
        SplitStrategy::EveryK(k) => {
            let k = k.max(1);
            cuts.extend((1..xml.len()).filter(|i| i % k == 0));
        }
        SplitStrategy::Boundaries => {
            for i in 0..xml.len().saturating_sub(1) {
                let cut = match xml[i] {
                    b'<' | b'&' => true,
                    b']' => xml.get(i + 1) == Some(&b']'),
                    _ => false,
                };
                if cut {
                    cuts.push(i + 1);
                }
            }
        }
    }
    cuts
}

/// Runs `engine` over `xml` delivered as the chunks induced by `cuts`
/// (sorted interior positions), via [`FeedReader`]. Returns the matched
/// ids and the engine, mirroring `twigm::engine::run_engine`.
pub fn run_engine_chunked<E: StreamEngine>(
    mut engine: E,
    xml: &[u8],
    cuts: &[usize],
) -> Result<(Vec<twigm_sax::NodeId>, E), SaxError> {
    let table = engine.symbols().cloned();
    let mut parser = FeedReader::new();
    let mut start = 0usize;
    let mut chunks: Vec<&[u8]> = Vec::with_capacity(cuts.len() + 1);
    for &cut in cuts {
        chunks.push(&xml[start..cut]);
        start = cut;
    }
    chunks.push(&xml[start..]);

    for (i, chunk) in chunks.iter().enumerate() {
        parser.feed(chunk);
        if i + 1 == chunks.len() {
            parser.finish();
        }
        loop {
            match parser.next_event()? {
                FeedEvent::NeedData | FeedEvent::Done => break,
                FeedEvent::Event(event) => match event {
                    twigm_sax::Event::Start(tag) => {
                        let sym = match &table {
                            Some(t) => t.lookup(tag.name()),
                            None => Symbol::UNKNOWN,
                        };
                        let mut attrs: Vec<Attribute<'_>> = Vec::new();
                        if table.is_none() || engine.needs_attributes(sym) {
                            for a in tag.attributes() {
                                attrs.push(a?);
                            }
                        }
                        if table.is_some() {
                            engine.start_element_sym(
                                sym,
                                tag.name(),
                                &attrs,
                                tag.level(),
                                tag.id(),
                            );
                        } else {
                            engine.start_element(tag.name(), &attrs, tag.level(), tag.id());
                        }
                    }
                    twigm_sax::Event::End(tag) => match &table {
                        Some(t) => {
                            engine.end_element_sym(t.lookup(tag.name()), tag.name(), tag.level())
                        }
                        None => engine.end_element(tag.name(), tag.level()),
                    },
                    twigm_sax::Event::Text(t) => engine.text(&t),
                    _ => {}
                },
            }
        }
    }
    let results = engine.take_results();
    Ok((results, engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use twigm::engine::run_engine;
    use twigm::TwigM;
    use twigm_xpath::parse;

    #[test]
    fn split_points_cover_the_document() {
        let xml = b"<a>&amp;<![CDATA[x]]></a>";
        assert_eq!(
            split_points(xml, SplitStrategy::OneByte).len(),
            xml.len() - 1
        );
        let cuts = split_points(xml, SplitStrategy::Boundaries);
        // After '<' (4 tags + CDATA open), after '&', after ']]'.
        assert!(cuts.contains(&1), "mid-tag cut");
        assert!(cuts.contains(&4), "mid-entity cut");
        assert!(!cuts.is_empty() && cuts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn chunked_run_matches_whole_run() {
        let xml = b"<r><a p=\"1\">t&amp;x<b/></a><a><b/></a></r>";
        let query = parse("//a[@p]/b").unwrap();
        let (whole, engine) = run_engine(TwigM::new(&query).unwrap(), &xml[..]).unwrap();
        let whole_peak = engine.stats().peak_entries;
        for strategy in STRATEGIES {
            let cuts = split_points(xml, strategy);
            let (ids, engine) =
                run_engine_chunked(TwigM::new(&query).unwrap(), xml, &cuts).unwrap();
            assert_eq!(ids, whole, "{strategy:?}");
            assert_eq!(engine.stats().peak_entries, whole_peak, "{strategy:?}");
        }
    }
}
