//! Parser and AST for `XP{/,//,*,[]}` — the XPath fragment evaluated by
//! the TwigM streaming query processor.
//!
//! The fragment (following the paper, §2) consists of:
//!
//! * child axis `/` and descendant axis shorthand `//`;
//! * name tests and the wildcard `*`;
//! * predicates `[...]`, nestable, containing relative paths
//!   (existential semantics), attribute tests (`[@id]`), and — as in the
//!   paper's implementation which "supports attributes as well as
//!   elements" — value comparisons (`[@year='2000']`, `[price < 10]`,
//!   `[text()='abc']`) combined with `and` / `or`.
//!
//! The grammar:
//!
//! ```text
//! query    := ('/' | '//') step (('/' | '//') step)*
//! step     := (NCName | '*') predicate*
//! predicate:= '[' or-expr ']'
//! or-expr  := and-expr ('or' and-expr)*
//! and-expr := term ('and' term)*
//! term     := '(' or-expr ')' | 'not(' or-expr ')' | integer
//!           | 'count(' rel-step ')' cmp integer
//!           | strfn '(' value ',' string ')'
//!           | value cmp literal | value
//! strfn    := 'contains' | 'starts-with' | 'ends-with'
//! value    := '@' NCName
//!           | 'text()'
//!           | rel-path ('/' '@' NCName | '/' 'text()')?
//! rel-path := step (('/' | '//') step)*        -- relative to context node
//! cmp      := '=' | '!=' | '<' | '<=' | '>' | '>='
//! literal  := string | number
//! ```
//!
//! # Example
//!
//! ```
//! use twigm_xpath::{parse, Axis};
//!
//! let q = parse("//a[d]//b[e]//c").unwrap(); // the paper's Q1
//! assert_eq!(q.steps.len(), 3);
//! assert_eq!(q.steps[1].axis, Axis::Descendant);
//! assert_eq!(q.to_string(), "//a[d]//b[e]//c");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
mod lexer;
mod parser;
pub mod simplify;

pub use ast::{Axis, CmpOp, Literal, NameTest, Path, PredExpr, Step, StrFunc, Value, XPathClass};
pub use error::{ParseError, ParseResult};
pub use parser::{parse, parse_union};
pub use simplify::simplify;
