//! Publish/subscribe filtering with many standing queries — the setting
//! of the paper's related work on filtering systems (YFilter, XTrie,
//! XPush; §6), served by `MultiTwigM`'s shared-dispatch evaluation.
//!
//! Hundreds of subscribers each register an XPath subscription; a stream
//! of order documents flows through once; every subscriber receives the
//! node ids that matched their query.
//!
//! Run with: `cargo run --release --example pubsub_filter`

use twigm::multi::MultiTwigM;
use twigm::TwigM;
use twigm_xpath::parse;

fn main() {
    // 1. Subscriptions: product watchers, fraud rules, region digests...
    let mut subscriptions: Vec<String> = Vec::new();
    for product in ["book", "disk", "lamp", "desk"] {
        for region in ["eu", "us", "apac"] {
            subscriptions.push(format!(
                "//order[@region = '{region}']//item[product = '{product}']"
            ));
            subscriptions.push(format!(
                "//order[@region = '{region}'][total > 900]//item[product = '{product}']/qty"
            ));
        }
    }
    subscriptions.push("//order[total > 990]".to_string());
    subscriptions.push("//order[customer[@vip]]//item".to_string());

    let mut engine = MultiTwigM::new();
    for sub in &subscriptions {
        engine
            .add_query(&parse(sub).expect("valid subscription"))
            .unwrap();
    }
    println!("{} standing subscriptions registered", engine.query_count());

    // 2. A synthetic order feed.
    let feed = build_feed(3_000);
    println!("feed: {:.1} KB", feed.len() as f64 / 1024.0);

    // 3. One pass, all subscriptions at once.
    let start = std::time::Instant::now();
    let results = engine.run(feed.as_bytes()).expect("well-formed feed");
    let multi_elapsed = start.elapsed();

    let mut per_query = vec![0usize; subscriptions.len()];
    for r in &results {
        per_query[r.query] += 1;
    }
    println!(
        "one pass: {} notifications across {} subscriptions in {multi_elapsed:.1?}",
        results.len(),
        per_query.iter().filter(|&&n| n > 0).count()
    );
    let busiest = per_query
        .iter()
        .enumerate()
        .max_by_key(|(_, n)| **n)
        .expect("non-empty");
    println!(
        "busiest subscription: {} ({} notifications)",
        subscriptions[busiest.0], busiest.1
    );

    // 4. Cross-check + compare with the naive deployment: one engine per
    //    subscription, one pass each.
    let start = std::time::Instant::now();
    let mut naive_total = 0usize;
    for (i, sub) in subscriptions.iter().enumerate() {
        let mut engine = TwigM::new(&parse(sub).unwrap()).unwrap();
        let (ids, _) = twigm::engine::run_engine(&mut engine, feed.as_bytes()).unwrap();
        assert_eq!(ids.len(), per_query[i], "subscription {i} disagrees");
        naive_total += ids.len();
    }
    let naive_elapsed = start.elapsed();
    assert_eq!(naive_total, results.len());
    println!(
        "separate engines (one stream pass per subscription): {naive_elapsed:.1?} \
         ({:.1}x the shared pass)",
        naive_elapsed.as_secs_f64() / multi_elapsed.as_secs_f64()
    );
}

/// A deterministic order feed.
fn build_feed(orders: usize) -> String {
    let products = ["book", "disk", "lamp", "desk", "chair"];
    let regions = ["eu", "us", "apac"];
    let mut xml = String::from("<feed>");
    for i in 0..orders {
        let region = regions[i % regions.len()];
        let total = (i * 37) % 1000;
        let vip = i % 11 == 0;
        xml.push_str(&format!("<order id=\"o{i}\" region=\"{region}\">"));
        xml.push_str(&format!(
            "<customer{}><name>c{}</name></customer>",
            if vip { " vip=\"1\"" } else { "" },
            i % 97
        ));
        for j in 0..(i % 4) + 1 {
            let product = products[(i + j) % products.len()];
            xml.push_str(&format!(
                "<item><product>{product}</product><qty>{}</qty></item>",
                (j % 5) + 1
            ));
        }
        xml.push_str(&format!("<total>{total}</total></order>"));
    }
    xml.push_str("</feed>");
    xml
}
