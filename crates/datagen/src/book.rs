//! The Book dataset: the role of IBM's XML Generator with the Book DTD
//! from the XQuery use cases (paper §5.1, first dataset).
//!
//! The structure transcribes the use-case DTD: a bibliography of books,
//! each with a title, authors and *recursively nested sections* — the
//! recursion (`section//section`) combined with descendant-axis queries
//! is exactly what makes this the dataset where TwigM's compact encoding
//! pays off (figure 7(a)).
//!
//! The paper's generator settings are reproduced: `NumberLevels = 20`,
//! `MaxRepeats = 9`, all else default.

use std::io::{self, Write};

use crate::dtd::{AttrGen, Content, Dtd, ElementDef, Occurs, Particle, TextGen};
use crate::generator::{GenConfig, GenReport, Generator};

/// Builds the Book DTD.
pub fn dtd() -> Dtd {
    let mut dtd = Dtd::new("bib", "book");
    dtd.element(
        "book",
        ElementDef::seq(vec![
            Particle::new("title", Occurs::One),
            Particle::new("author", Occurs::Plus),
            Particle::new("section", Occurs::Plus),
        ])
        .with_attr("id", AttrGen::Id("b".into()), 1.0)
        .with_attr("year", AttrGen::Int(1980, 2006), 0.9),
    );
    dtd.element("title", ElementDef::pcdata(TextGen::Words(2, 5)));
    dtd.element(
        "author",
        ElementDef::seq(vec![
            Particle::new("first", Occurs::One),
            Particle::new("last", Occurs::One),
        ]),
    );
    dtd.element("first", ElementDef::pcdata(TextGen::Words(1, 1)));
    dtd.element("last", ElementDef::pcdata(TextGen::Words(1, 1)));
    // Section recursion is the dataset's defining feature: the weights
    // below make deep `section//section` chains common (the generated
    // documents reach the NumberLevels=20 cap, like the paper's), which
    // is what multiplies pattern matches for `//`-queries.
    dtd.element(
        "section",
        ElementDef {
            content: Content::Choice {
                options: vec![
                    Particle::new("p", Occurs::One),
                    Particle::new("figure", Occurs::One),
                    Particle::new("section", Occurs::One),
                    Particle::new("section", Occurs::One),
                    Particle::new("title", Occurs::One),
                ],
                rounds: (1, 4),
            },
            attrs: vec![],
            text: TextGen::Words(0, 0),
        }
        .with_attr("id", AttrGen::Id("s".into()), 0.7)
        .with_attr("difficulty", AttrGen::Int(1, 10), 0.5),
    );
    dtd.element("p", ElementDef::pcdata(TextGen::Words(8, 25)));
    dtd.element(
        "figure",
        ElementDef::seq(vec![
            Particle::new("image", Occurs::One),
            Particle::new("title", Occurs::Opt),
        ])
        .with_attr("width", AttrGen::Int(100, 1200), 1.0)
        .with_attr("height", AttrGen::Int(100, 900), 1.0),
    );
    dtd.element(
        "image",
        ElementDef::empty().with_attr("source", AttrGen::Word, 1.0),
    );
    dtd
}

/// Generates approximately `target_bytes` of Book data.
pub fn generate(seed: u64, target_bytes: usize, out: &mut dyn Write) -> io::Result<GenReport> {
    let dtd = dtd();
    Generator::new(&dtd, GenConfig::new(seed, target_bytes)).run(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_are_recursive() {
        assert_eq!(dtd().recursive_elements(), vec!["section".to_string()]);
    }

    #[test]
    fn generated_books_have_expected_shape() {
        let mut out = Vec::new();
        let report = generate(42, 50_000, &mut out).unwrap();
        assert!(report.records >= 1);
        assert!(report.max_depth >= 4);
        assert!(report.max_depth <= 20, "NumberLevels must cap depth");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("<book"));
        assert!(text.contains("<section"));
        assert!(text.contains("<author>"));
    }

    #[test]
    fn depth_cap_honours_number_levels() {
        let dtd = dtd();
        let mut config = GenConfig::new(42, 200_000);
        config.number_levels = 20;
        let mut out = Vec::new();
        let report = Generator::new(&dtd, config).run(&mut out).unwrap();
        assert!(report.max_depth <= 20);
    }
}
