//! Hand-rolled argument parsing (the approved dependency list has no CLI
//! parser, and the surface is small enough not to need one).

/// What to print per match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Pre-order node ids, one per line (default).
    Ids,
    /// Serialized XML fragments, one per line.
    Fragments,
    /// Only the total count.
    Count,
    /// Attribute values (for queries ending in `/@attr`).
    Values,
}

/// Which engine evaluates the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Pick PathM / BranchM / TwigM by query class (default).
    Auto,
    /// Force the full TwigM machine.
    Twig,
    /// Force PathM (predicate-free queries only).
    PathM,
    /// Force BranchM (`XP{/,[]}` queries only).
    BranchM,
    /// The explicit-enumeration baseline (for cross-checking).
    Naive,
    /// The lazy-DFA baseline (predicate-free queries only).
    Dfa,
    /// The in-memory DOM baseline (loads the whole input).
    Dom,
}

/// How to report run statistics on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsMode {
    /// No stats reporting (default).
    Off,
    /// The classic one-line counter summary (`--stats`).
    Text,
    /// One `twigm-stats-v1` JSON object (`--stats=json`).
    Json,
    /// A multi-line human-readable report (`--stats=pretty`).
    Pretty,
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    /// The queries (one = classic mode; several = tagged multi-query).
    pub queries: Vec<String>,
    /// Input path (`None` / `-` = stdin).
    pub file: Option<String>,
    /// Output mode.
    pub output: OutputMode,
    /// Engine selection.
    pub engine: EngineChoice,
    /// Stats reporting mode (stderr).
    pub stats: StatsMode,
    /// Write a machine transition trace to this file (`.jsonl` = JSON
    /// Lines, anything else = Chrome trace-event JSON).
    pub trace: Option<String>,
    /// Periodic throughput heartbeats on stderr.
    pub progress: bool,
    /// Print elapsed time to stderr.
    pub time: bool,
    /// Filtering mode: report each matching query once (with `-q`).
    pub filter: bool,
    /// Worker threads. 1 (default) is the untouched serial path; above
    /// that the scan runs pipelined on a producer thread and union
    /// queries are sharded across workers.
    pub threads: usize,
}

const HELP: &str = "\
twigm — streaming XPath (XP{/,//,*,[]}) processor

USAGE:
    twigm [OPTIONS] QUERY [FILE]
    twigm [OPTIONS] -q QUERY [-q QUERY]... [FILE]

ARGS:
    QUERY   an XPath query, e.g. '//book[@year >= 2000]/title';
            unions are supported: '//a/b | //c[d]'
    FILE    XML input; omitted or '-' reads stdin

OPTIONS:
    -q, --query QUERY   register a standing query (repeatable); with
                        several queries, output lines are 'Qi<TAB>id'
        --ids           print matched node ids (default)
        --fragments     print matched elements as XML fragments
        --values        print attribute values (queries ending in /@attr)
    -c, --count         print only the number of matches
        --engine NAME   auto|twig|path|branch|naive|dfa|dom (default auto)
        --filter        with -q: boolean filtering — print each matching
                        query once and stop evaluating it (pub/sub mode)
        --stats[=MODE]  print run statistics to stderr; MODE is text
                        (default: one-line counters), json (one
                        twigm-stats-v1 object), or pretty (multi-line
                        report with throughput and the |Q|·R bound)
        --trace FILE    record every machine transition (pushes, pops,
                        uploads, results); FILE ending in .jsonl gets
                        JSON Lines, anything else the Chrome trace-event
                        format (open in chrome://tracing or Perfetto);
                        machine engines only, --ids/--count output
        --progress      print throughput heartbeats to stderr while
                        streaming
        --threads N     parallel pipelined execution (default 1 = serial):
                        the XML scan moves to a producer thread feeding
                        batched events through a bounded queue, and a
                        union query's branches are sharded over N-1
                        evaluator threads; output is byte-identical to
                        the serial run; machine engines, --ids/--count
        --time          print elapsed time to stderr
    -h, --help          show this help

EXIT STATUS: 0 matches found, 1 no matches, 2 error.";

impl Args {
    /// Parses arguments; `Ok(None)` means help was printed.
    pub fn parse<I: Iterator<Item = String>>(mut argv: I) -> Result<Option<Args>, String> {
        let mut args = Args {
            queries: Vec::new(),
            file: None,
            output: OutputMode::Ids,
            engine: EngineChoice::Auto,
            stats: StatsMode::Off,
            trace: None,
            progress: false,
            time: false,
            filter: false,
            threads: 1,
        };
        let mut positional: Vec<String> = Vec::new();
        while let Some(arg) = argv.next() {
            match arg.as_str() {
                "-h" | "--help" => {
                    println!("{HELP}");
                    return Ok(None);
                }
                "-q" | "--query" => {
                    let q = argv.next().ok_or("--query requires a value")?;
                    args.queries.push(q);
                }
                "--ids" => args.output = OutputMode::Ids,
                "--values" => args.output = OutputMode::Values,
                "--fragments" => args.output = OutputMode::Fragments,
                "-c" | "--count" => args.output = OutputMode::Count,
                "--stats" => args.stats = StatsMode::Text,
                mode if mode.starts_with("--stats=") => {
                    args.stats = match &mode["--stats=".len()..] {
                        "text" => StatsMode::Text,
                        "json" => StatsMode::Json,
                        "pretty" => StatsMode::Pretty,
                        other => {
                            return Err(format!("unknown stats mode `{other}` (text|json|pretty)"))
                        }
                    };
                }
                "--trace" => {
                    let path = argv.next().ok_or("--trace requires a file path")?;
                    args.trace = Some(path);
                }
                "--progress" => args.progress = true,
                "--threads" => {
                    let n = argv.next().ok_or("--threads requires a value")?;
                    args.threads =
                        n.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--threads expects a positive integer, got `{n}`")
                        })?;
                }
                "--filter" => args.filter = true,
                "--time" => args.time = true,
                "--engine" => {
                    let name = argv.next().ok_or("--engine requires a value")?;
                    args.engine = match name.as_str() {
                        "auto" => EngineChoice::Auto,
                        "twig" => EngineChoice::Twig,
                        "path" => EngineChoice::PathM,
                        "branch" => EngineChoice::BranchM,
                        "naive" => EngineChoice::Naive,
                        "dfa" => EngineChoice::Dfa,
                        "dom" => EngineChoice::Dom,
                        other => {
                            return Err(format!(
                                "unknown engine `{other}` (auto|twig|path|branch|naive|dfa|dom)"
                            ))
                        }
                    };
                }
                other if other.starts_with('-') && other != "-" => {
                    return Err(format!("unknown option `{other}`"));
                }
                _ => positional.push(arg),
            }
        }
        // Positional handling: if no -q queries, the first positional is
        // the query; the next is the file.
        let mut positional = positional.into_iter();
        if args.queries.is_empty() {
            args.queries
                .push(positional.next().ok_or("missing QUERY argument")?);
        }
        args.file = positional.next();
        if let Some(extra) = positional.next() {
            return Err(format!("unexpected argument `{extra}`"));
        }
        if args.queries.len() > 1
            && matches!(args.output, OutputMode::Fragments | OutputMode::Values)
        {
            return Err("--fragments/--values are not supported with multiple queries".into());
        }
        if args.filter && matches!(args.output, OutputMode::Fragments | OutputMode::Values) {
            return Err("--filter reports query names; --fragments/--values do not apply".into());
        }
        if args.trace.is_some() {
            if matches!(
                args.engine,
                EngineChoice::Naive | EngineChoice::Dfa | EngineChoice::Dom
            ) {
                return Err(
                    "--trace records machine transitions; it requires a machine engine \
                     (auto|twig|path|branch)"
                        .into(),
                );
            }
            if matches!(args.output, OutputMode::Fragments | OutputMode::Values) {
                return Err("--trace supports --ids/--count output only".into());
            }
            if args.queries.len() > 1 || args.filter {
                return Err("--trace supports a single query only".into());
            }
        }
        if args.threads > 1 {
            if matches!(
                args.engine,
                EngineChoice::Naive | EngineChoice::Dfa | EngineChoice::Dom
            ) {
                return Err("--threads requires a machine engine (auto|twig|path|branch)".into());
            }
            if matches!(args.output, OutputMode::Fragments | OutputMode::Values) {
                return Err("--threads supports --ids/--count output only".into());
            }
            if args.queries.len() > 1 || args.filter {
                return Err(
                    "--threads supports a single query (unions via `|` are sharded); \
                     tagged -q output stays serial"
                        .into(),
                );
            }
            if args.trace.is_some() || args.progress {
                return Err("--threads cannot be combined with --trace/--progress".into());
            }
        }
        Ok(Some(args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<Args>, String> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn minimal_invocation() {
        let args = parse(&["//a"]).unwrap().unwrap();
        assert_eq!(args.queries, vec!["//a"]);
        assert_eq!(args.file, None);
        assert_eq!(args.output, OutputMode::Ids);
        assert_eq!(args.engine, EngineChoice::Auto);
    }

    #[test]
    fn query_and_file() {
        let args = parse(&["//a", "data.xml"]).unwrap().unwrap();
        assert_eq!(args.file.as_deref(), Some("data.xml"));
    }

    #[test]
    fn flags_combine() {
        let args = parse(&["-c", "--engine", "dom", "--stats", "--time", "//a", "-"])
            .unwrap()
            .unwrap();
        assert_eq!(args.output, OutputMode::Count);
        assert_eq!(args.engine, EngineChoice::Dom);
        assert_eq!(args.stats, StatsMode::Text);
        assert!(args.time);
        assert_eq!(args.file.as_deref(), Some("-"));
    }

    #[test]
    fn stats_modes_parse() {
        assert_eq!(
            parse(&["//a"]).unwrap().unwrap().stats,
            StatsMode::Off,
            "stats default off"
        );
        assert_eq!(
            parse(&["--stats=json", "//a"]).unwrap().unwrap().stats,
            StatsMode::Json
        );
        assert_eq!(
            parse(&["--stats=pretty", "//a"]).unwrap().unwrap().stats,
            StatsMode::Pretty
        );
        assert_eq!(
            parse(&["--stats=text", "//a"]).unwrap().unwrap().stats,
            StatsMode::Text
        );
        assert!(parse(&["--stats=csv", "//a"]).is_err());
    }

    #[test]
    fn trace_and_progress_parse() {
        let args = parse(&["--trace", "out.json", "--progress", "//a"])
            .unwrap()
            .unwrap();
        assert_eq!(args.trace.as_deref(), Some("out.json"));
        assert!(args.progress);
    }

    #[test]
    fn trace_restrictions_are_enforced() {
        assert!(parse(&["--trace"]).is_err());
        assert!(parse(&["--trace", "t.json", "--engine", "dom", "//a"]).is_err());
        assert!(parse(&["--trace", "t.json", "--engine", "naive", "//a"]).is_err());
        assert!(parse(&["--trace", "t.json", "--fragments", "//a"]).is_err());
        assert!(parse(&["--trace", "t.json", "-q", "//a", "-q", "//b"]).is_err());
        assert!(parse(&["--trace", "t.json", "--filter", "-q", "//a"]).is_err());
    }

    #[test]
    fn threads_parse_and_default_to_serial() {
        assert_eq!(parse(&["//a"]).unwrap().unwrap().threads, 1);
        assert_eq!(
            parse(&["--threads", "4", "//a"]).unwrap().unwrap().threads,
            4
        );
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "0", "//a"]).is_err());
        assert!(parse(&["--threads", "x", "//a"]).is_err());
    }

    #[test]
    fn threads_restrictions_are_enforced() {
        assert!(parse(&["--threads", "2", "--engine", "dom", "//a"]).is_err());
        assert!(parse(&["--threads", "2", "--engine", "naive", "//a"]).is_err());
        assert!(parse(&["--threads", "2", "--fragments", "//a"]).is_err());
        assert!(parse(&["--threads", "2", "-q", "//a", "-q", "//b"]).is_err());
        assert!(parse(&["--threads", "2", "--filter", "-q", "//a"]).is_err());
        assert!(parse(&["--threads", "2", "--trace", "t.json", "//a"]).is_err());
        assert!(parse(&["--threads", "2", "--progress", "//a"]).is_err());
        // --threads 1 is the serial path: everything still combines.
        assert!(parse(&["--threads", "1", "--progress", "//a"])
            .unwrap()
            .is_some());
        assert!(parse(&["--threads", "2", "--stats=json", "-c", "//a"])
            .unwrap()
            .is_some());
    }

    #[test]
    fn repeated_queries() {
        let args = parse(&["-q", "//a", "-q", "//b", "f.xml"])
            .unwrap()
            .unwrap();
        assert_eq!(args.queries.len(), 2);
        assert_eq!(args.file.as_deref(), Some("f.xml"));
    }

    #[test]
    fn errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--engine", "nope", "//a"]).is_err());
        assert!(parse(&["--bogus", "//a"]).is_err());
        assert!(parse(&["//a", "f.xml", "extra"]).is_err());
        assert!(parse(&["-q", "//a", "-q", "//b", "--fragments"]).is_err());
        assert!(parse(&["--query"]).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse(&["--help"]).unwrap().is_none());
    }
}
