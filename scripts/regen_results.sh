#!/usr/bin/env bash
# Regenerates every reference experiment output under docs/results/.
# Usage: scripts/regen_results.sh [--full]   (default: 0.25 scale)
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p twigm-bench --bins
rm -rf target/twigm-datasets
mkdir -p docs/results
for bin in fig5_datasets fig6_queries fig7_time fig8_memory \
           fig9_scale_time fig10_scale_memory \
           ablation_encoding ablation_complexity ablation_filtering \
           ablation_buffering; do
  echo ">> $bin"
  if ! ./target/release/$bin "$@" --repeats 3 --timeout 180 \
        > "docs/results/$bin.txt" 2>&1; then
    # Ablation binaries take no common flags.
    ./target/release/$bin > "docs/results/$bin.txt" 2>&1
  fi
done
echo "done: docs/results/"
